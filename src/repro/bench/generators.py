"""Reusable gate-level building blocks for the ISCAS85-class generators.

Everything is built through :class:`Builder`, which hands out unique net
names and exposes one helper per primitive.  Arithmetic blocks are offered in
two flavours:

* *macro* gates (one XOR gate per XOR) — compact;
* *NAND-mapped* (each XOR as the classic 4-NAND lattice, carry logic as
  NAND/NAND) — matches how the historical ISCAS85 netlists are written,
  creates the reconvergent fan-out that makes some stuck-at faults genuinely
  hard for ATPG, and multiplies gate counts toward the benchmark sizes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..netlist.circuit import Circuit
from ..netlist.gate import GateType


class Builder:
    """Incremental netlist builder with automatic unique naming."""

    def __init__(self, circuit: Circuit, prefix: str = "n") -> None:
        self.circuit = circuit
        self.prefix = prefix
        self._counter = 0

    def fresh(self, hint: str = "") -> str:
        self._counter += 1
        base = f"{self.prefix}{self._counter}"
        return f"{base}_{hint}" if hint else base

    def gate(self, gate_type: GateType, inputs: Sequence[str], hint: str = "") -> str:
        name = self.fresh(hint)
        self.circuit.add_gate(name, gate_type, tuple(inputs))
        return name

    # -- primitives ----------------------------------------------------
    def AND(self, *ins: str, hint: str = "and") -> str:
        return self.gate(GateType.AND, ins, hint)

    def NAND(self, *ins: str, hint: str = "nand") -> str:
        return self.gate(GateType.NAND, ins, hint)

    def OR(self, *ins: str, hint: str = "or") -> str:
        return self.gate(GateType.OR, ins, hint)

    def NOR(self, *ins: str, hint: str = "nor") -> str:
        return self.gate(GateType.NOR, ins, hint)

    def XOR(self, *ins: str, hint: str = "xor") -> str:
        return self.gate(GateType.XOR, ins, hint)

    def XNOR(self, *ins: str, hint: str = "xnor") -> str:
        return self.gate(GateType.XNOR, ins, hint)

    def NOT(self, a: str, hint: str = "not") -> str:
        return self.gate(GateType.NOT, (a,), hint)

    def BUFF(self, a: str, hint: str = "buf") -> str:
        return self.gate(GateType.BUFF, (a,), hint)

    def MUX(self, d0: str, d1: str, sel: str, hint: str = "mux") -> str:
        return self.gate(GateType.MUX, (d0, d1, sel), hint)

    # -- NAND-mapped composites ----------------------------------------
    def xor_nand(self, a: str, b: str) -> str:
        """XOR(a, b) as the classic 4-NAND lattice (reconvergent)."""
        nab = self.NAND(a, b, hint="xn")
        na = self.NAND(a, nab, hint="xa")
        nb = self.NAND(b, nab, hint="xb")
        return self.NAND(na, nb, hint="xo")

    def xnor_nand(self, a: str, b: str) -> str:
        return self.NOT(self.xor_nand(a, b), hint="xno")

    def mux2_nand(self, d0: str, d1: str, sel: str) -> str:
        """2:1 mux from NANDs: out = NAND(NAND(d0, ~s), NAND(d1, s))."""
        ns = self.NOT(sel, hint="msn")
        a = self.NAND(d0, ns, hint="m0")
        b = self.NAND(d1, sel, hint="m1")
        return self.NAND(a, b, hint="mo")

    # -- trees ----------------------------------------------------------
    def _tree(self, gate_type: GateType, nets: Sequence[str], width: int, hint: str) -> str:
        nets = list(nets)
        if not nets:
            raise ValueError("tree over no inputs")
        while len(nets) > 1:
            grouped: List[str] = []
            for i in range(0, len(nets), width):
                chunk = nets[i : i + width]
                if len(chunk) == 1:
                    grouped.append(chunk[0])
                else:
                    grouped.append(self.gate(gate_type, chunk, hint))
            nets = grouped
        return nets[0]

    def and_tree(self, nets: Sequence[str], width: int = 4) -> str:
        return self._tree(GateType.AND, nets, width, "at")

    def or_tree(self, nets: Sequence[str], width: int = 4) -> str:
        return self._tree(GateType.OR, nets, width, "ot")

    def xor_tree(self, nets: Sequence[str], width: int = 2) -> str:
        return self._tree(GateType.XOR, nets, width, "xt")

    def xor_tree_nand(self, nets: Sequence[str]) -> str:
        """Balanced parity tree built entirely from 4-NAND XORs."""
        nets = list(nets)
        while len(nets) > 1:
            grouped = []
            for i in range(0, len(nets) - 1, 2):
                grouped.append(self.xor_nand(nets[i], nets[i + 1]))
            if len(nets) % 2:
                grouped.append(nets[-1])
            nets = grouped
        return nets[0]

    # -- arithmetic ------------------------------------------------------
    def half_adder(self, a: str, b: str) -> Tuple[str, str]:
        """Returns (sum, carry)."""
        return self.XOR(a, b, hint="has"), self.AND(a, b, hint="hac")

    def full_adder(self, a: str, b: str, cin: str) -> Tuple[str, str]:
        """Macro-gate full adder; returns (sum, carry)."""
        axb = self.XOR(a, b, hint="fax")
        s = self.XOR(axb, cin, hint="fas")
        c1 = self.AND(a, b, hint="fac1")
        c2 = self.AND(axb, cin, hint="fac2")
        return s, self.OR(c1, c2, hint="faco")

    def full_adder_nand(self, a: str, b: str, cin: str) -> Tuple[str, str]:
        """NAND-mapped full adder (9 gates); returns (sum, carry)."""
        axb = self.xor_nand(a, b)
        s = self.xor_nand(axb, cin)
        n1 = self.NAND(a, b, hint="fn1")
        n2 = self.NAND(axb, cin, hint="fn2")
        cout = self.NAND(n1, n2, hint="fnc")
        return s, cout

    def ripple_adder(
        self, a: Sequence[str], b: Sequence[str], cin: str, nand_mapped: bool = False
    ) -> Tuple[List[str], str]:
        """n-bit ripple-carry adder; returns (sum bits lsb-first, carry-out)."""
        if len(a) != len(b):
            raise ValueError("operand widths differ")
        adder = self.full_adder_nand if nand_mapped else self.full_adder
        sums: List[str] = []
        carry = cin
        for bit_a, bit_b in zip(a, b):
            s, carry = adder(bit_a, bit_b, carry)
            sums.append(s)
        return sums, carry

    # -- selection / comparison -------------------------------------------
    def mux_word(
        self, d0: Sequence[str], d1: Sequence[str], sel: str, nand_mapped: bool = False
    ) -> List[str]:
        mux = self.mux2_nand if nand_mapped else (lambda a, b, s: self.MUX(a, b, s))
        return [mux(x, y, sel) for x, y in zip(d0, d1)]

    def equality(self, a: Sequence[str], b: Sequence[str], nand_mapped: bool = False) -> str:
        """a == b (wide AND of per-bit XNOR) — a naturally rare node."""
        xnor = self.xnor_nand if nand_mapped else (lambda x, y: self.XNOR(x, y))
        bits = [xnor(x, y) for x, y in zip(a, b)]
        return self.and_tree(bits)

    def decoder(self, sel: Sequence[str], nand_mapped: bool = False) -> List[str]:
        """Full decoder: 2**len(sel) one-hot outputs (minterm ANDs)."""
        inverted = [self.NOT(s, hint="dn") for s in sel]
        outputs: List[str] = []
        for code in range(1 << len(sel)):
            terms = [
                sel[i] if (code >> i) & 1 else inverted[i] for i in range(len(sel))
            ]
            if nand_mapped:
                nand = self.NAND(*terms, hint="dm")
                outputs.append(self.NOT(nand, hint="dmo"))
            else:
                outputs.append(self.AND(*terms, hint="dm"))
        return outputs

    def priority_chain(self, requests: Sequence[str]) -> List[str]:
        """One-hot highest-priority grant: grant[i] = req[i] & ~(req[0..i-1])."""
        grants: List[str] = []
        blocked: Optional[str] = None
        for i, req in enumerate(requests):
            if blocked is None:
                grants.append(self.BUFF(req, hint="g0"))
                blocked = req
            else:
                nb = self.NOT(blocked, hint="pb")
                grants.append(self.AND(req, nb, hint="g"))
                blocked = self.OR(blocked, req, hint="pacc")
        return grants

    def encoder_onehot(self, onehot: Sequence[str], width: int) -> List[str]:
        """Binary index of the (assumed) one-hot input; OR trees per bit."""
        outs: List[str] = []
        for bit in range(width):
            members = [net for i, net in enumerate(onehot) if (i >> bit) & 1]
            if not members:
                outs.append(self.gate(GateType.TIE0, (), hint="e0"))
            elif len(members) == 1:
                outs.append(self.BUFF(members[0], hint="eb"))
            else:
                outs.append(self.or_tree(members))
        return outs


def declare_inputs(circuit: Circuit, prefix: str, count: int) -> List[str]:
    """Declare ``count`` primary inputs named ``prefix0..``; returns names."""
    return [circuit.add_input(f"{prefix}{i}") for i in range(count)]
