"""Simulation-core perf harness: records throughput into ``BENCH_perf.json``.

Measures the compiled levelized engine against the retained per-gate
reference implementations on ISCAS-scale circuits:

* **bitsim** — one bit-parallel pass over ``N_PATTERNS`` random vectors;
  throughput is reported in pattern-gate evaluations per second.
* **faultsim** — coverage-style run (``drop_detected=False``) of a sampled
  stuck-at fault list against the same vectors.
* **seqsim** — Monte-Carlo trigger sessions over a counter-Trojan-infected
  c3540-class circuit: compiled sequential schedule vs. the per-gate
  reference dict engine, bit-identity checked in the same run.
* **pipeline** — one end-to-end TrojanZero flow (thresholds → salvage →
  insertion → Pft Monte-Carlo) with the salvage compile-cache counters
  (full vs. patched compiles — the structural-fingerprint cache at work).

Results (before/after wall time, throughput, speedup) are merged into
``BENCH_perf.json`` at the repo root so the perf trajectory is tracked in
version control.  The assertions below are deliberately *generous* floors —
they exist to fail loudly on order-of-magnitude regressions (e.g. the engine
silently falling back to a per-gate path), not to pin exact machine speeds.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.atpg import full_fault_list
from repro.atpg.faultsim import FaultSimulator, reference_fault_sim
from repro.bench import c17, c499_like, c880_like, c1908_like, c3540_like
from repro.bench.iscas_extra import c6288_like
from repro.core.pipeline import TrojanZeroPipeline
from repro.sim.bitsim import (
    BitSimulator,
    pack_patterns,
    reference_run_packed,
    unpack_patterns,
)
from repro.sim.seqsim import ReferenceSequentialSimulator, SequentialSimulator
from repro.trojan import insert_counter_trojan

_REPO_ROOT = Path(__file__).resolve().parents[1]
_OUT_PATH = _REPO_ROOT / "BENCH_perf.json"


def _update_report(section: str, payload: dict) -> None:
    """Merge one section into ``BENCH_perf.json`` (sections own their keys)."""
    report = {}
    if _OUT_PATH.exists():
        try:
            report = json.loads(_OUT_PATH.read_text())
        except json.JSONDecodeError:
            report = {}
    report[section] = payload
    _OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

N_PATTERNS = 4096
FAULT_SAMPLE = 96
BITSIM_REPEATS = 3

CIRCUITS = {
    "c17": c17,
    "c499": c499_like,
    "c880": c880_like,
    "c1908": c1908_like,
    "c3540": c3540_like,
    "c6288": c6288_like,
}

#: Loud-regression floors (well below the typically observed speedups).
MIN_CIRCUITS_BITSIM_2X = 3
MIN_CIRCUITS_FAULTSIM_8X = 3


def _best_of(fn, repeats: int) -> float:
    return min(_timed(fn) for _ in range(repeats))


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _bench_circuit(name, build, rng):
    circuit = build()
    n_gates = circuit.num_logic_gates
    patterns = (rng.random((N_PATTERNS, len(circuit.inputs))) < 0.5).astype(np.uint8)

    # --- bit-parallel simulation -------------------------------------
    sim = BitSimulator(circuit)
    sim.run(patterns)  # warm the compiled schedule
    t_after = _best_of(lambda: sim.run(patterns), BITSIM_REPEATS)

    # The reference pass must pay the same unpacked-in / unpacked-out
    # conversion costs as ``sim.run`` or tiny circuits (c17) report a
    # phantom regression that is really just asymmetric packing overhead.
    def reference_pass():
        packed = pack_patterns(patterns)
        packed_inputs = {pi: packed[i] for i, pi in enumerate(circuit.inputs)}
        values = reference_run_packed(circuit, packed_inputs)
        out = np.stack([values[o] for o in circuit.outputs])
        unpack_patterns(out, N_PATTERNS)

    t_before = _best_of(reference_pass, BITSIM_REPEATS)

    # --- fault simulation (coverage workload) ------------------------
    faults = full_fault_list(circuit)
    if len(faults) > FAULT_SAMPLE:
        chosen = rng.choice(len(faults), FAULT_SAMPLE, replace=False)
        faults = [faults[i] for i in chosen]
    fsim = FaultSimulator(circuit)
    fsim.run(patterns, faults, drop_detected=False)  # warm the cone schedules
    tf_after = _timed(lambda: fsim.run(patterns, faults, drop_detected=False))
    tf_before = _timed(
        lambda: reference_fault_sim(circuit, patterns, faults, drop_detected=False)
    )

    evals = N_PATTERNS * n_gates
    return {
        "gates": n_gates,
        "n_patterns": N_PATTERNS,
        "bitsim": {
            "before_s": t_before,
            "after_s": t_after,
            "before_pattern_gates_per_s": evals / t_before,
            "after_pattern_gates_per_s": evals / t_after,
            "speedup": t_before / t_after,
        },
        "faultsim": {
            "n_faults": len(faults),
            "before_s": tf_before,
            "after_s": tf_after,
            "before_fault_patterns_per_s": len(faults) * N_PATTERNS / tf_before,
            "after_fault_patterns_per_s": len(faults) * N_PATTERNS / tf_after,
            "speedup": tf_before / tf_after,
        },
    }


def test_compiled_engine_throughput():
    rng = np.random.default_rng(2026)
    results = {name: _bench_circuit(name, build, rng) for name, build in CIRCUITS.items()}
    _update_report("workload", {
        "n_patterns": N_PATTERNS,
        "fault_sample": FAULT_SAMPLE,
        "faultsim_mode": "coverage (drop_detected=False)",
        "units": "pattern-gate evaluations per second / fault-patterns per second",
    })
    _update_report("circuits", results)

    # Compiled dispatch must never lose to the per-gate reference — on ANY
    # circuit, including tiny c17, now that both sides pay the same packing
    # cost.  Floor at 0.9 to absorb timer jitter on microsecond-scale runs.
    bitsim_slow = [n for n, r in results.items() if r["bitsim"]["speedup"] < 0.9]
    assert not bitsim_slow, (
        f"compiled bitsim lost to the reference interpreter on {bitsim_slow} "
        f"(see {_OUT_PATH})"
    )

    iscas = {n: r for n, r in results.items() if n != "c17"}
    bitsim_fast = [n for n, r in iscas.items() if r["bitsim"]["speedup"] >= 2.0]
    faultsim_fast = [n for n, r in iscas.items() if r["faultsim"]["speedup"] >= 8.0]
    assert len(bitsim_fast) >= MIN_CIRCUITS_BITSIM_2X, (
        f"bit-parallel speedup regressed: only {bitsim_fast} of {list(iscas)} "
        f"reached 2x (see {_OUT_PATH})"
    )
    assert len(faultsim_fast) >= MIN_CIRCUITS_FAULTSIM_8X, (
        f"fault-sim speedup regressed: only {faultsim_fast} of {list(iscas)} "
        f"reached 8x (see {_OUT_PATH})"
    )


# ---------------------------------------------------------------------------
# sequential Monte-Carlo (counter-Trojan trigger sessions)
# ---------------------------------------------------------------------------
SEQ_SESSIONS = 256
SEQ_VECTORS = 48
SEQ_MIN_SPEEDUP = 3.0  # loud-regression floor; typically observed >= 5x


def test_seqsim_monte_carlo_throughput():
    """Compiled sequential engine vs. reference dict engine, N'' Monte-Carlo."""
    circuit = c3540_like()
    instance = insert_counter_trojan(
        circuit,
        victim=circuit.outputs[0],
        clock_source=circuit.internal_nets()[50],
        n_bits=3,
    )
    rng = np.random.default_rng(2026)
    sequences = (
        rng.random((SEQ_SESSIONS, SEQ_VECTORS, len(circuit.inputs))) < 0.5
    ).astype(np.uint8)
    watch = [instance.trigger_net]

    sim = SequentialSimulator(circuit)
    sim.run_sequences_nets(sequences, watch)  # warm the compiled schedule
    t_after = _best_of(lambda: sim.run_sequences_nets(sequences, watch), 3)
    got = sim.run_sequences_nets(sequences, watch)

    ref = ReferenceSequentialSimulator(circuit)
    t_before = _timed(lambda: ref.run_sequences_nets(sequences, watch))
    want = ref.run_sequences_nets(sequences, watch)

    assert (got == want).all(), "compiled sequential engine diverged from reference"

    vector_steps = SEQ_SESSIONS * SEQ_VECTORS
    speedup = t_before / t_after
    _update_report("seqsim", {
        "circuit": "c3540 + 3-bit counter Trojan",
        "gates": circuit.num_logic_gates,
        "n_sessions": SEQ_SESSIONS,
        "n_vectors": SEQ_VECTORS,
        "before_s": t_before,
        "after_s": t_after,
        "before_vector_steps_per_s": vector_steps / t_before,
        "after_vector_steps_per_s": vector_steps / t_after,
        "speedup": speedup,
    })
    assert speedup >= SEQ_MIN_SPEEDUP, (
        f"sequential Monte-Carlo speedup regressed: {speedup:.1f}x < "
        f"{SEQ_MIN_SPEEDUP}x (see {_OUT_PATH})"
    )


# ---------------------------------------------------------------------------
# end-to-end pipeline (thresholds -> salvage -> insertion -> Pft MC)
# ---------------------------------------------------------------------------
def test_pipeline_end_to_end_timing():
    """One full TrojanZero flow; records wall time + salvage compile caching."""
    circuit = c880_like()
    pipeline = TrojanZeroPipeline.default()
    start = time.perf_counter()
    result = pipeline.run(
        circuit,
        p_threshold=0.85,
        max_candidates=24,
        monte_carlo_sessions=64,
    )
    elapsed = time.perf_counter() - start

    stats = result.salvage.compile_stats
    trials = len(result.salvage.removals)
    _update_report("pipeline", {
        "circuit": "c880",
        "gates": circuit.num_logic_gates,
        "max_candidates": 24,
        "monte_carlo_sessions": 64,
        "wall_s": elapsed,
        "salvage_trials": trials,
        "salvage_compile_stats": stats,
    })
    # The structural-fingerprint cache must keep salvage's edit/revert loop
    # off the cold-compile path: at most the golden + first-trial compiles
    # may be full; every other trial patches or hits a cache.
    assert stats.get("full_compiles", 0) <= 2, (
        f"salvage recompiled cold {stats.get('full_compiles')} times over "
        f"{trials} trials (stats: {stats}; see {_OUT_PATH})"
    )
    if trials > 2:
        assert (
            stats.get("patched_compiles", 0) + stats.get("fingerprint_hits", 0) > 0
        ), f"no compile-cache hits across {trials} salvage trials: {stats}"
