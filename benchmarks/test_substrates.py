"""Micro-benchmarks of the substrate layers (throughput-style, many rounds).

These track the performance of the pieces everything else leans on: logic
simulation, fault simulation, PODEM, probability propagation, SCOAP, and the
power model — so a regression in any of them shows up here first.
"""

import numpy as np
import pytest

from repro.atpg import (
    FaultSimulator,
    PodemEngine,
    StuckAtFault,
    collapse_faults,
)
from repro.atpg.testability import compute_testability
from repro.bench import c880_like
from repro.power import analyze, map_circuit
from repro.prob import signal_probabilities, switching_activity
from repro.sim import BitSimulator, SequentialSimulator
from repro.trojan import insert_counter_trojan


@pytest.fixture(scope="module")
def c880():
    return c880_like()


@pytest.fixture(scope="module")
def patterns(c880):
    rng = np.random.default_rng(0)
    return (rng.random((256, len(c880.inputs))) < 0.5).astype(np.uint8)


def test_bench_bitsim_256_vectors(benchmark, c880, patterns):
    sim = BitSimulator(c880)
    out = benchmark(sim.run, patterns)
    assert out.shape == (256, len(c880.outputs))


def test_bench_seqsim_trojaned_circuit(benchmark, patterns):
    infected = c880_like()
    insert_counter_trojan(infected, infected.outputs[0], infected.nets[80], 3)
    sim = SequentialSimulator(infected)
    seqs = patterns[:64][np.newaxis, :, :]

    def run():
        return sim.run_sequences(seqs)

    out = benchmark(run)
    assert out.shape[1] == 64


def test_bench_fault_simulation(benchmark, c880, patterns):
    sim = FaultSimulator(c880)
    faults = collapse_faults(c880)[:200]

    def run():
        return sim.run(patterns[:64], list(faults), drop_detected=True)

    outcome = benchmark(run)
    assert outcome.detected or outcome.undetected


def test_bench_podem_single_fault(benchmark, c880):
    engine = PodemEngine(c880, backtrack_limit=30)
    fault = StuckAtFault(c880.outputs[0], 0)
    result = benchmark(engine.generate, fault)
    assert result.status is not None


def test_bench_signal_probabilities(benchmark, c880):
    probs = benchmark(signal_probabilities, c880)
    assert len(probs) == len(c880.nets)


def test_bench_switching_activity(benchmark, c880):
    act = benchmark(switching_activity, c880)
    assert len(act) == len(c880.nets)


def test_bench_scoap(benchmark, c880):
    t = benchmark(compute_testability, c880)
    assert len(t.co) == len(c880.nets)


def test_bench_technology_mapping(benchmark, c880, library):
    mapped = benchmark(map_circuit, c880, library)
    assert mapped.cell_count >= c880.num_logic_gates


def test_bench_power_analysis(benchmark, c880, library):
    report = benchmark(analyze, c880, library)
    assert report.total_uw > 0
