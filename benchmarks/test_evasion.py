"""The headline claim (Sec. IV): TrojanZero evades the power-based detectors
that catch conventional additive HTs — plus this reproduction's ablation
showing redistribution-aware (structural) detectors defeat it.
"""

import pytest

from conftest import run_benchmark_cached
from repro.detect import evasion_experiment


@pytest.fixture(scope="module")
def c499_run(pipeline):
    return run_benchmark_cached(pipeline, "c499")


def test_evasion_paper_mode(benchmark, c499_run, library):
    report = benchmark.pedantic(
        evasion_experiment,
        args=(c499_run.thresholds.circuit, c499_run.insertion.infected, library),
        kwargs=dict(additive_gates=16, n_chips=40, mode="paper"),
        rounds=1,
        iterations=1,
    )
    print(f"\ngolden flagged:     {report.golden_rates}")
    print(f"additive flagged:   {report.additive_rates} (+{report.additive_overhead_pct:.2f}% power)")
    print(f"TrojanZero flagged: {report.trojanzero_rates} ({report.trojanzero_overhead_pct:+.2f}% power)")
    assert report.additive_detected(min_rate=0.9)
    assert report.trojanzero_evades(margin=0.1)
    assert abs(report.trojanzero_overhead_pct) < 1.0


def test_evasion_structural_ablation(benchmark, c499_run, library):
    """Ablation: detectors that see power *redistribution* catch TrojanZero,
    supporting the paper's closing call for new detection methodologies."""
    report = benchmark.pedantic(
        evasion_experiment,
        args=(c499_run.thresholds.circuit, c499_run.insertion.infected, library),
        kwargs=dict(additive_gates=16, n_chips=40, mode="structural"),
        rounds=1,
        iterations=1,
    )
    print(f"\nstructural-mode TrojanZero flagged: {report.trojanzero_rates}")
    assert report.additive_detected(min_rate=0.5)
    assert not report.trojanzero_evades(margin=0.1)


def test_evasion_across_benchmarks(benchmark, pipeline, library):
    """Paper-mode evasion holds on every benchmark, not just c499."""

    def run_all():
        verdicts = {}
        for name in ("c432", "c880"):
            result = run_benchmark_cached(pipeline, name)
            report = evasion_experiment(
                result.thresholds.circuit,
                result.insertion.infected,
                library,
                additive_gates=12,
                n_chips=30,
                mode="paper",
            )
            verdicts[name] = (report.trojanzero_evades(), report.additive_detected())
        return verdicts

    verdicts = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print(f"\nverdicts (evades, additive caught): {verdicts}")
    for name, (evades, caught) in verdicts.items():
        assert evades, f"TrojanZero flagged on {name}"
        assert caught, f"additive HT missed on {name}"
