"""Trace-lab perf harness: records throughput into ``BENCH_perf.json``.

Measures the side-channel trace subsystem on a c3540-scale *sequential*
(counter-Trojan-infected) circuit:

* **generation** — toggle-tensor extraction over all nets via the compiled
  sequential engine plus the energy-weighting matmul; throughput in watched
  net-cycles per second.  The floor exists to fail loudly if the hot path
  ever regresses to per-net Python loops.
* **population** — per-chip measurement (weight draw + matmul + noise
  chain), chips per second.
* **ripple** — the cone-restricted ripple re-settle of
  ``CompiledCircuit.step_sequential`` against a forced full re-settle on a
  worst-case deep-counter workload (counter clocked from a PI, edges every
  other vector).

Results merge into ``BENCH_perf.json`` under the ``traces`` section; the
assertions are deliberately generous floors, not machine-speed pins.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.bench import c3540_like
from repro.detect import VariationModel
from repro.power import tech65_library
from repro.sim import compile_circuit
from repro.sim.seqsim import SequentialSimulator
from repro.traces import GaussianNoise, NoiseChain, Quantization, TraceGenerator
from repro.traces.lab import TraceLabConfig, trace_population
from repro.trojan import insert_counter_trojan

_REPO_ROOT = Path(__file__).resolve().parents[1]
_OUT_PATH = _REPO_ROOT / "BENCH_perf.json"


def _update_report(section: str, payload: dict) -> None:
    """Merge one section into ``BENCH_perf.json`` (sections own their keys)."""
    report = {}
    if _OUT_PATH.exists():
        try:
            report = json.loads(_OUT_PATH.read_text())
        except json.JSONDecodeError:
            report = {}
    report[section] = payload
    _OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


N_SEQUENCES = 128
N_VECTORS = 48
N_CHIPS = 16

#: Loud-regression floors (typically observed well above these).
MIN_NET_CYCLES_PER_S = 2e6
MIN_CHIPS_PER_S = 4.0
MIN_RIPPLE_SPEEDUP = 1.3


def test_trace_lab_throughput():
    library = tech65_library()
    circuit = c3540_like()
    insert_counter_trojan(
        circuit,
        victim=circuit.outputs[0],
        clock_source=circuit.internal_nets()[50],
        n_bits=5,
    )
    rng = np.random.default_rng(2026)
    sequences = (
        rng.random((N_SEQUENCES, N_VECTORS, len(circuit.inputs))) < 0.5
    ).astype(np.uint8)

    generator = TraceGenerator(circuit, library)
    generator.toggles(sequences[:2])  # warm the compiled schedule
    t_toggles, toggles = _timed(lambda: generator.toggles(sequences))
    t_weight, traces = _timed(lambda: generator.traces_from_toggles(toggles))
    n_nets = len(generator.nets)
    net_cycles = N_SEQUENCES * (N_VECTORS - 1) * n_nets
    gen_rate = net_cycles / (t_toggles + t_weight)

    config = TraceLabConfig(n_sequences=N_SEQUENCES, n_vectors=N_VECTORS, n_repeats=4)
    noise = NoiseChain(
        (GaussianNoise(sigma_rel=0.01), Quantization(bits=12, full_scale_fj=float(traces.max()) * 1.5))
    )
    t_chips, chips = _timed(
        lambda: trace_population(
            generator, toggles, N_CHIPS, config, noise, np.random.default_rng(7)
        )
    )
    chips_per_s = N_CHIPS / t_chips

    # Cone-restricted ripple re-settle vs. forced full re-settle, worst case:
    # a 5-bit counter clocked straight from a PI pumped every other vector.
    deep = c3540_like()
    insert_counter_trojan(
        deep, victim=deep.outputs[0], clock_source=deep.inputs[0], n_bits=5
    )
    pump = (rng.random((64, 96, len(deep.inputs))) < 0.5).astype(np.uint8)
    pump[:, :, 0] = np.arange(96)[np.newaxis, :] % 2
    sim = SequentialSimulator(deep)
    watch = [deep.outputs[0]]
    sim.run_sequences_nets(pump, watch)  # warm compile + fire cache
    t_restricted, got = _timed(lambda: sim.run_sequences_nets(pump, watch))
    compiled = compile_circuit(deep)
    original = compiled.dff_fire_schedule
    try:
        compiled.dff_fire_schedule = lambda fired: None  # force full re-settles
        t_full, want = _timed(lambda: sim.run_sequences_nets(pump, watch))
    finally:
        compiled.dff_fire_schedule = original
    assert (got == want).all(), "cone-restricted re-settle diverged"
    ripple_speedup = t_full / t_restricted

    _update_report("traces", {
        "circuit": "c3540 + 5-bit counter Trojan",
        "gates": circuit.num_logic_gates,
        "nets_watched": n_nets,
        "generation": {
            "n_sequences": N_SEQUENCES,
            "n_vectors": N_VECTORS,
            "toggles_s": t_toggles,
            "weighting_s": t_weight,
            "net_cycles_per_s": gen_rate,
        },
        "population": {
            "n_chips": N_CHIPS,
            "n_repeats": config.n_repeats,
            "wall_s": t_chips,
            "chips_per_s": chips_per_s,
        },
        "ripple_resettle": {
            "workload": "5-bit PI-clocked counter, edge every other vector",
            "restricted_s": t_restricted,
            "full_s": t_full,
            "speedup": ripple_speedup,
        },
    })

    assert len(chips) == N_CHIPS
    assert gen_rate >= MIN_NET_CYCLES_PER_S, (
        f"trace generation regressed: {gen_rate:.2e} net-cycles/s < "
        f"{MIN_NET_CYCLES_PER_S:.0e} (per-net Python loop in the hot path? "
        f"see {_OUT_PATH})"
    )
    assert chips_per_s >= MIN_CHIPS_PER_S, (
        f"chip measurement regressed: {chips_per_s:.1f} chips/s (see {_OUT_PATH})"
    )
    assert ripple_speedup >= MIN_RIPPLE_SPEEDUP, (
        f"cone-restricted ripple re-settle regressed: {ripple_speedup:.2f}x "
        f"< {MIN_RIPPLE_SPEEDUP}x (see {_OUT_PATH})"
    )
