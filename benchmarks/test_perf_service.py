"""Fleet-service perf harness: ``service`` section of ``BENCH_perf.json``.

The service's whole pitch is that it adds *coordination*, not *cost*: jobs
flow through an HTTP queue, a spec-hash cache, and a columnar store, and
none of that may tax the underlying campaign machinery noticeably.  Three
loud floors guard that:

- **submit-to-record overhead** — wall time from ``FleetClient.submit`` to
  a streamed terminal record for a one-cell job, minus the direct
  ``run_experiment`` time for the same (warm) cell.  This prices the whole
  control plane: HTTP round-trips, queue hand-off, producer thread, record
  pagination.
- **cache-hit latency** — per-record time to re-stream a fully cached
  campaign.  Cache hits must feel free, or nobody resubmits specs and the
  dedup guarantee stops mattering.
- **store query throughput** — rows/s for a filtered, projected query over
  a compacted store.  Queries scan numpy columns; if this drops toward
  JSONL-parsing speed the columnar layer has silently broken.

Floors are generous for shared CI hardware; the recorded numbers in
``BENCH_perf.json`` track the real trajectory.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.api import CampaignSpec, ExperimentRecord, ExperimentSpec, run_experiment
from repro.service import FleetClient, FleetServer, ResultStore

_REPO_ROOT = Path(__file__).resolve().parents[1]
_OUT_PATH = _REPO_ROOT / "BENCH_perf.json"


def _update_report(section: str, payload: dict) -> None:
    """Merge one section into ``BENCH_perf.json`` (sections own their keys)."""
    report = {}
    if _OUT_PATH.exists():
        try:
            report = json.loads(_OUT_PATH.read_text())
        except json.JSONDecodeError:
            report = {}
    report[section] = payload
    _OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


#: Control-plane price of one job: submit -> streamed record, minus compute.
MAX_SUBMIT_OVERHEAD_MS = 500.0
#: Per-record latency when every cell is served from the result cache.
MAX_CACHE_HIT_MS_PER_RECORD = 100.0
#: Filtered + projected query throughput over a compacted store.
MIN_QUERY_ROWS_PER_S = 50_000.0

N_CACHED_CELLS = 8
N_STORE_ROWS = 20_000


def _store_record(seed: int) -> ExperimentRecord:
    """Synthetic record (distinct spec hash per seed): the query bench
    prices the store, not the experiment pipeline."""
    spec = ExperimentSpec(circuit="c17", pth=0.9, seed=seed)
    return ExperimentRecord(
        spec=spec,
        success=seed % 2 == 0,
        benchmark=spec.circuit,
        gates=10,
        detection=None,
        trigger={"pft_analytic": 1e-6},
        error=None,
        runtime={"timings_s": {"total": 0.01}},
    )


def test_service_control_plane_overhead(tmp_path):
    server = FleetServer(port=0, data_dir=tmp_path / "fleet", jobs=1).start()
    try:
        client = FleetClient(server.url, poll_s=0.01)
        client.wait_ready()

        # -- submit-to-record overhead (one warm c17 cell) ---------------
        warm_spec = ExperimentSpec(circuit="c17", pth=0.9, seed=10_000)
        direct_s = None
        for _ in range(3):
            t0 = time.perf_counter()
            run_experiment(warm_spec)
            elapsed = time.perf_counter() - t0
            direct_s = elapsed if direct_s is None else min(direct_s, elapsed)

        overhead_ms = None
        for attempt in range(3):
            spec = ExperimentSpec(circuit="c17", pth=0.9, seed=20_000 + attempt)
            t0 = time.perf_counter()
            job_id = client.submit(spec)
            records = list(client.stream(job_id))
            elapsed = time.perf_counter() - t0
            assert len(records) == 1 and records[0].error is None
            sample = (elapsed - direct_s) * 1e3
            overhead_ms = sample if overhead_ms is None else min(
                overhead_ms, sample
            )

        # -- cache-hit latency -------------------------------------------
        campaign = CampaignSpec.sweep(
            circuits=["c17"],
            pths=[0.9],
            seeds=range(N_CACHED_CELLS),
            name="bench_cache",
        )
        cold_id = client.submit(campaign)
        assert client.wait(cold_id).state == "done"

        cache_hit_ms = None
        for _ in range(3):
            t0 = time.perf_counter()
            warm_id = client.submit(campaign)
            records = list(client.stream(warm_id))
            elapsed_ms = (time.perf_counter() - t0) * 1e3
            assert len(records) == N_CACHED_CELLS
            status = client.status(warm_id)
            assert status.n_cached == N_CACHED_CELLS, "bench premise broken"
            sample = elapsed_ms / N_CACHED_CELLS
            cache_hit_ms = sample if cache_hit_ms is None else min(
                cache_hit_ms, sample
            )
    finally:
        server.close()

    # -- store query throughput ------------------------------------------
    store = ResultStore(tmp_path / "store")
    store.ingest_many([_store_record(seed) for seed in range(N_STORE_ROWS)])
    store.compact()
    rows_per_s = None
    for _ in range(3):
        t0 = time.perf_counter()
        view = store.query(
            columns=["circuit", "pth", "pft_analytic"], success=True
        )
        elapsed = time.perf_counter() - t0
        assert len(view["pth"]) == N_STORE_ROWS // 2
        sample = N_STORE_ROWS / elapsed
        rows_per_s = sample if rows_per_s is None else max(rows_per_s, sample)

    _update_report("service", {
        "workload": (
            "in-process FleetServer, 1-cell c17 job; "
            f"{N_CACHED_CELLS}-cell cached resubmit; "
            f"{N_STORE_ROWS}-row store query (best of 3 each)"
        ),
        "submit_to_record_overhead_ms": overhead_ms,
        "cache_hit_ms_per_record": cache_hit_ms,
        "store_query_rows_per_s": rows_per_s,
        "direct_cell_s": direct_s,
    })

    assert overhead_ms < MAX_SUBMIT_OVERHEAD_MS, (
        f"service control plane regressed: submit-to-record overhead "
        f"{overhead_ms:.1f}ms > {MAX_SUBMIT_OVERHEAD_MS}ms (HTTP + queue + "
        f"streaming must stay off the hot path; see {_OUT_PATH})"
    )
    assert cache_hit_ms < MAX_CACHE_HIT_MS_PER_RECORD, (
        f"cache-hit streaming regressed: {cache_hit_ms:.1f}ms/record > "
        f"{MAX_CACHE_HIT_MS_PER_RECORD}ms (cached resubmits must feel free; "
        f"see {_OUT_PATH})"
    )
    assert rows_per_s > MIN_QUERY_ROWS_PER_S, (
        f"store query throughput regressed: {rows_per_s:,.0f} rows/s < "
        f"{MIN_QUERY_ROWS_PER_S:,.0f} (queries must stay columnar; "
        f"see {_OUT_PATH})"
    )
