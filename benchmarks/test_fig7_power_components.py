"""Fig. 7: dynamic power, leakage power, and area of N, N', N'' per benchmark.

Regenerates the three bar charts' series and asserts the paper's annotated
observations:

* **X** — leakage of N'' sits closest to its bound: the relative leakage gap
  to N is smaller than the relative dynamic gap on most benchmarks (the HT's
  always-on leakage is the binding component).
* **Y** — dynamic power of N'' stays at or below the N bound everywhere.
* **Z** — area is occasionally the tightest constraint.
"""

import pytest

from conftest import PAPER_PARAMETERS


def _series(table1_results):
    rows = []
    for name, result in table1_results.items():
        n = result.power_free
        npr = result.power_modified
        nn = result.power_infected
        rows.append(
            {
                "circuit": name,
                "dynamic": (n.dynamic_uw, npr.dynamic_uw, nn.dynamic_uw),
                "leakage": (n.leakage_uw, npr.leakage_uw, nn.leakage_uw),
                "area": (n.area_ge, npr.area_ge, nn.area_ge),
            }
        )
    return rows


def test_fig7_series(benchmark, table1_results):
    rows = benchmark.pedantic(_series, args=(table1_results,), rounds=1, iterations=1)
    print()
    header = f"{'circuit':<8} {'metric':<8} {'N':>10} {'N-prime':>10} {'N-dblpr':>10}"
    print(header)
    print("-" * len(header))
    for row in rows:
        for metric in ("dynamic", "leakage", "area"):
            n, npr, nn = row[metric]
            print(f"{row['circuit']:<8} {metric:<8} {n:>10.2f} {npr:>10.2f} {nn:>10.2f}")

    slack_dyn, slack_leak, slack_area = [], [], []
    for row in rows:
        for metric, bucket in (
            ("dynamic", slack_dyn),
            ("leakage", slack_leak),
            ("area", slack_area),
        ):
            n, _, nn = row[metric]
            bucket.append((n - nn) / n)  # fraction of bound left unused

        # Bar-chart ordering: the modified circuit is the smallest everywhere.
        for metric in ("dynamic", "leakage", "area"):
            n, npr, nn = row[metric]
            assert npr <= nn * 1.001, (row["circuit"], metric)

    # Observation Y: dynamic never exceeds the bound by more than tolerance.
    assert all(s >= -0.02 for s in slack_dyn)
    # Observation X: on most benchmarks leakage hugs its bound at least as
    # tightly as dynamic does.
    closer = sum(1 for d, l in zip(slack_dyn, slack_leak) if abs(l) <= abs(d) + 0.01)
    assert closer >= len(rows) // 2
    # Observation Z: area is within 2% of the bound on every benchmark and is
    # the tightest of the three on at least one.
    assert all(abs(s) <= 0.02 for s in slack_area)


def test_fig7_leakage_is_binding_component(benchmark, table1_results):
    """Paper obs. 1: 'size of the inserted HT is mainly dictated by its
    leakage power' — the HT contributes proportionally more leakage than
    dynamic power relative to what salvaging freed."""

    def compute():
        ratios = []
        for result in table1_results.values():
            freed = result.salvage.delta
            ht_leak = result.power_infected.leakage_uw - result.power_modified.leakage_uw
            ht_dyn = result.power_infected.dynamic_uw - result.power_modified.dynamic_uw
            if freed.leakage_uw > 0 and freed.dynamic_uw > 0 and ht_dyn > 0:
                ratios.append(
                    (ht_leak / freed.leakage_uw) / (ht_dyn / freed.dynamic_uw)
                )
        return ratios

    ratios = benchmark.pedantic(compute, rounds=1, iterations=1)
    print(f"\nleakage-vs-dynamic budget utilization ratios: {ratios}")
    # The HT consumes the leakage budget at a rate comparable to (and on some
    # benchmarks faster than) the dynamic budget — the regime in which leakage
    # must be "precisely monitored in all phases" (Sec. IV.1).  See
    # EXPERIMENTS.md for the measured spread vs. the paper's stronger claim.
    assert all(r > 0.5 for r in ratios)
    assert any(r > 1.0 for r in ratios)
