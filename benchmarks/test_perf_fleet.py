"""Fleet perf harness: supervised-pool overhead into ``BENCH_perf.json``.

The supervised execution layer (`repro.api.fleet.CellSupervisor`) wraps the
worker pool with windowed submission, deadline polling, and retry
bookkeeping.  On a *clean* campaign (no faults) all of that must be noise:
this bench runs the same cell grid through a bare ``ProcessPoolExecutor``
(the pre-fleet path) and through the supervisor and asserts the overhead
stays under ``MAX_OVERHEAD_PCT`` — a loud CI floor so the fault-tolerance
substrate can never silently tax every campaign.

Cells are real c432 pipeline runs (~1.5 s each), so the measured delta is
dominated by supervision mechanics, not process startup jitter; both paths
fork from a parent with a warm structural compile cache.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path

from repro.api import CellSupervisor, ExperimentSpec, FleetPolicy, run_experiment
from repro.api.runner import _campaign_worker

_REPO_ROOT = Path(__file__).resolve().parents[1]
_OUT_PATH = _REPO_ROOT / "BENCH_perf.json"


def _update_report(section: str, payload: dict) -> None:
    """Merge one section into ``BENCH_perf.json`` (sections own their keys)."""
    report = {}
    if _OUT_PATH.exists():
        try:
            report = json.loads(_OUT_PATH.read_text())
        except json.JSONDecodeError:
            report = {}
    report[section] = payload
    _OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


N_CELLS = 6
JOBS = 2

#: Loud-regression floor: supervised-pool overhead on a clean campaign.
MAX_OVERHEAD_PCT = 5.0


def _specs():
    return [
        ExperimentSpec(circuit="c432", pth=0.975, design="counter2", seed=seed)
        for seed in range(N_CELLS)
    ]


def _run_bare(specs) -> float:
    start = time.perf_counter()
    with ProcessPoolExecutor(max_workers=JOBS) as executor:
        futures = [executor.submit(_campaign_worker, s.to_dict()) for s in specs]
        results = [f.result() for f in as_completed(futures)]
    assert len(results) == len(specs)
    return time.perf_counter() - start


def _run_supervised(specs) -> float:
    start = time.perf_counter()
    supervisor = CellSupervisor(specs, jobs=JOBS, policy=FleetPolicy())
    records = list(supervisor.iter_records())
    assert len(records) == len(specs)
    assert not [r for r in records if r.error is not None]
    return time.perf_counter() - start


def _latency_probe():
    """Per-cell supervision latency on a grid of tiny cells (worst case for
    relative overhead: ~ms cells make every parent wake-up visible)."""
    specs = [
        ExperimentSpec(circuit="c17", pth=0.9, seed=seed) for seed in range(40)
    ]
    run_experiment(specs[0])
    bare_s = min(_run_bare(specs) for _ in range(3))
    supervised_s = min(_run_supervised(specs) for _ in range(3))
    return (supervised_s - bare_s) / len(specs) * 1e3


def test_supervised_pool_overhead():
    specs = _specs()
    # Warm the parent's structural compile cache: forked workers inherit it,
    # so neither path pays cold compiles and the delta is pure supervision.
    run_experiment(specs[0])

    # Strictly alternate the two paths and compare the best of each: single
    # runs on shared CI hardware jitter by ~10%, far above the supervision
    # cost being measured, and the min estimator under interleaving cancels
    # slow-machine phases fairly.  A reading over the floor is confirmed
    # with extra pairs before failing — a real regression reproduces, a
    # noise spike does not.
    bare_times, supervised_times = [], []

    def overhead_pct() -> float:
        return 100.0 * (min(supervised_times) - min(bare_times)) / min(bare_times)

    for round_ in (2, 3):
        for _ in range(round_):
            bare_times.append(_run_bare(specs))
            supervised_times.append(_run_supervised(specs))
        if overhead_pct() < MAX_OVERHEAD_PCT:
            break

    per_cell_ms = _latency_probe()
    _update_report("fleet", {
        "workload": f"{N_CELLS} x c432 counter2 cells, {JOBS} workers, clean run",
        "n_cells": N_CELLS,
        "jobs": JOBS,
        "bare_pool_s": min(bare_times),
        "supervised_s": min(supervised_times),
        "overhead_pct": overhead_pct(),
        "supervision_latency_ms_per_cell": per_cell_ms,
        "latency_probe": "40 x c17 cells (~ms each), best of 3",
    })

    assert overhead_pct() < MAX_OVERHEAD_PCT, (
        f"supervised-pool overhead regressed: {overhead_pct():.2f}% > "
        f"{MAX_OVERHEAD_PCT}% on a clean campaign (per-cell supervision must "
        f"stay off the hot path; see {_OUT_PATH})"
    )
