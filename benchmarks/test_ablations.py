"""Ablation benches for the design choices the paper calls out.

* **Pth sweep** (Sec. III-B): "Choosing high value of Pth provides less
  number of candidates, however, it increases the ratio of the gates that can
  be removed from the identified candidates."
* **Defender effort**: tighter ATPG budgets leave more coverage holes, so the
  attacker salvages more — the inverse lever on the same mechanism.
* **Counter width** (Table I): Pft falls steeply with counter bits.
* **Dummy padding**: disabling it leaves a visible negative differential.
"""

import numpy as np
import pytest

from repro.atpg import AtpgConfig
from repro.bench import c880_like
from repro.core import (
    DefenderModel,
    InsertionConfig,
    TrojanZeroPipeline,
    compute_thresholds,
    salvage,
)
from repro.trojan import binomial_tail_at_least


def test_ablation_pth_sweep(benchmark, library):
    """Higher Pth -> fewer candidates, higher removable ratio."""

    def run():
        circuit = c880_like()
        th = compute_thresholds(circuit, library)
        rows = []
        for pth in (0.96, 0.992, 0.999):
            res = salvage(
                th.circuit, th.pattern_sets, library, pth, power_before=th.power
            )
            accepted = len(res.accepted_removals())
            attempted = max(1, len(res.removals))
            rows.append((pth, res.candidate_count, accepted, accepted / attempted))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"{'Pth':>6} {'|C|':>5} {'accepted':>9} {'ratio':>7}")
    for pth, c, acc, ratio in rows:
        print(f"{pth:>6} {c:>5} {acc:>9} {ratio:>7.2f}")
    candidates = [c for _, c, _, _ in rows]
    assert candidates == sorted(candidates, reverse=True)  # fewer as Pth rises
    # Removable ratio does not degrade as Pth rises (paper's claim).
    assert rows[-1][3] >= rows[0][3] - 0.05


def test_ablation_defender_effort(benchmark, library):
    """A more thorough defender shrinks the attacker's salvage."""

    def run():
        rows = []
        for coverage, max_pats in ((0.90, 48), (0.97, 64), (1.0, None)):
            defender = DefenderModel(
                atpg=AtpgConfig(
                    backtrack_limit=30,
                    random_blocks=4,
                    target_coverage=coverage,
                    max_patterns=max_pats,
                )
            )
            circuit = c880_like()
            th = compute_thresholds(circuit, library, defender)
            res = salvage(
                th.circuit, th.pattern_sets, library, 0.992, power_before=th.power
            )
            rows.append((coverage, th.test_set.coverage, res.expendable_gates))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"{'target':>7} {'achieved':>9} {'Eg':>4}")
    for target, achieved, eg in rows:
        print(f"{target:>7} {achieved:>9.3f} {eg:>4}")
    # Salvage must not grow when the defender gets stronger.
    assert rows[0][2] >= rows[-1][2]


def test_ablation_counter_width_vs_pft(benchmark):
    """Pft falls by orders of magnitude per added counter bit (Table I trend)."""

    def run():
        p_edge = 0.004
        session = 300
        return [
            (bits, binomial_tail_at_least(session, p_edge, (1 << bits) - 1))
            for bits in (2, 3, 4, 5)
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for bits, pft in rows:
        print(f"  {bits}-bit counter: Pft = {pft:.3e}")
    values = [pft for _, pft in rows]
    assert values == sorted(values, reverse=True)
    assert values[0] / max(values[-1], 1e-300) > 1e3


def test_ablation_dummy_padding(benchmark, library):
    """Without dummy padding the TZ circuit sits visibly below the area cap —
    the anomaly the paper's Sec. IV.4 padding step exists to hide."""

    def run():
        results = {}
        for padding in (False, True):
            pipeline = TrojanZeroPipeline.default()
            pipeline.insertion_config = InsertionConfig(dummy_padding=padding)
            res = pipeline.run(c880_like(), p_threshold=0.992, counter_bits=3)
            assert res.success
            results[padding] = res.delta_tz.area_ge
        return results

    deltas = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\narea left under the cap: unpadded {deltas[False]:.1f} GE, "
          f"padded {deltas[True]:.1f} GE")
    assert deltas[True] < deltas[False]
    assert deltas[True] <= 5.0
