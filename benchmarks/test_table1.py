"""Table I: TrojanZero analysis for the five ISCAS85-class benchmarks.

One bench per table row.  Each bench runs the complete Fig. 2 flow
(thresholds -> Algorithm 1 -> Algorithm 2) with the paper's per-circuit
parameters, times it, prints the row, and asserts the paper's shape:

* insertion succeeds with the paper's counter size;
* total power and area obey N' < N'' <= N (within 1%);
* every power component of N'' stays at its HT-free threshold;
* Pft stays in the paper's sub-1e-3 stealth band.
"""

import pytest

from conftest import PAPER_PARAMETERS, run_benchmark_cached
from repro.core import TableRow, format_row, format_table


def _assert_row_shape(result):
    assert result.success, result.insertion.attempts[-5:]
    n = result.power_free
    n_prime = result.power_modified
    n_inf = result.power_infected
    assert n_prime.total_uw < n.total_uw
    assert n_prime.area_ge < n.area_ge
    assert n_inf.total_uw <= 1.01 * n.total_uw
    assert n_inf.area_ge <= 1.01 * n.area_ge
    assert n_inf.total_uw > n_prime.total_uw
    assert n_inf.dynamic_uw <= 1.02 * n.dynamic_uw
    assert n_inf.leakage_uw <= 1.02 * n.leakage_uw
    assert result.salvage.candidate_count > 0
    assert result.salvage.expendable_gates > 0
    assert result.pft is not None and result.pft < 1e-3


@pytest.mark.parametrize("name", sorted(PAPER_PARAMETERS))
def test_table1_row(benchmark, pipeline, name):
    result = benchmark.pedantic(
        run_benchmark_cached, args=(pipeline, name), rounds=1, iterations=1
    )
    _assert_row_shape(result)
    print()
    print(format_row(TableRow.from_result(result)))


def test_table1_full(benchmark, table1_results):
    """Assemble and print the complete Table I reproduction."""
    rows = benchmark.pedantic(
        lambda: [TableRow.from_result(r) for r in table1_results.values()],
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows))
    # Paper observation 2 (circuit complexity vs salvaged cost): the two
    # large circuits expose at least as many expendable gates as the small ones.
    eg = {r.circuit: r.expendable for r in rows}
    assert max(eg["c1908_like"], eg["c3540_like"]) >= max(
        eg["c432_like"], eg["c499_like"]
    )
