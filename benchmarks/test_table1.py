"""Table I: TrojanZero analysis for the five ISCAS85-class benchmarks.

One bench per table row.  Each bench runs the complete Fig. 2 flow
(thresholds -> Algorithm 1 -> Algorithm 2) through the declarative
``repro.api`` front door with the paper's per-circuit parameters, times it,
prints the row from the structured :class:`repro.api.ExperimentRecord`, and
asserts the paper's shape:

* insertion succeeds with the paper's counter size;
* total power and area obey N' < N'' <= N (within 1%);
* every power component of N'' stays at its HT-free threshold;
* Pft stays in the paper's sub-1e-3 stealth band;
* the record round-trips through its JSONL serialization.
"""

import pytest

from conftest import PAPER_PARAMETERS, run_record_cached
from repro.api import ExperimentRecord
from repro.core import TableRow, format_row, format_table


def _assert_record_shape(record):
    assert record.error is None
    assert record.success, record.to_json_line()
    n = record.power["free"]
    n_prime = record.power["modified"]
    n_inf = record.power["infected"]
    assert n_prime["total_uw"] < n["total_uw"]
    assert n_prime["area_ge"] < n["area_ge"]
    assert n_inf["total_uw"] <= 1.01 * n["total_uw"]
    assert n_inf["area_ge"] <= 1.01 * n["area_ge"]
    assert n_inf["total_uw"] > n_prime["total_uw"]
    assert n_inf["dynamic_uw"] <= 1.02 * n["dynamic_uw"]
    assert n_inf["leakage_uw"] <= 1.02 * n["leakage_uw"]
    assert record.candidates > 0
    assert record.expendable > 0
    assert record.pft is not None and record.pft < 1e-3
    # The record is the serialization boundary: its JSONL payload must
    # reconstruct bit-identically.
    round_tripped = ExperimentRecord.from_json_line(record.to_json_line())
    assert round_tripped.payload_dict() == record.payload_dict()


@pytest.mark.parametrize("name", sorted(PAPER_PARAMETERS))
def test_table1_row(benchmark, pipeline, name):
    record = benchmark.pedantic(
        run_record_cached, args=(pipeline, name), rounds=1, iterations=1
    )
    _assert_record_shape(record)
    print()
    print(format_row(TableRow.from_record(record)))


def test_table1_full(benchmark, table1_records):
    """Assemble and print the complete Table I reproduction."""
    rows = benchmark.pedantic(
        lambda: [TableRow.from_record(r) for r in table1_records.values()],
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows))
    # Paper observation 2 (circuit complexity vs salvaged cost): the two
    # large circuits expose at least as many expendable gates as the small ones.
    eg = {r.circuit: r.expendable for r in rows}
    assert max(eg["c1908_like"], eg["c3540_like"]) >= max(
        eg["c432_like"], eg["c499_like"]
    )
