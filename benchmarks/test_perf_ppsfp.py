"""PPSFP perf harness: batched fault sweep vs. per-fault compiled path.

Times ``FaultSimulator.run(mode="ppsfp")`` against ``mode="single"`` on the
largest ISCAS-class circuits at benchmark scale (128 faults x 4096 patterns,
``drop_detected=False`` so both engines sweep the full list) and merges a
``ppsfp`` section into ``BENCH_perf.json``.  Bit-identity of the two modes is
asserted in the same run — a speedup from a wrong answer is no speedup.

The floors are loud-regression tripwires, set well below the observed
speedups (c3540 ~3.7x, c6288 ~18x): they catch PPSFP silently degrading to
per-fault behaviour, not machine-to-machine variance.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.atpg import FaultSimulator, full_fault_list
from repro.bench import c3540_like
from repro.bench.iscas_extra import c6288_like

_REPO_ROOT = Path(__file__).resolve().parents[1]
_OUT_PATH = _REPO_ROOT / "BENCH_perf.json"


def _update_report(section: str, payload: dict) -> None:
    """Merge one section into ``BENCH_perf.json`` (sections own their keys)."""
    report = {}
    if _OUT_PATH.exists():
        try:
            report = json.loads(_OUT_PATH.read_text())
        except json.JSONDecodeError:
            report = {}
    report[section] = payload
    _OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

N_PATTERNS = 4096
N_FAULTS = 128
REPEATS = 3

CIRCUITS = {
    "c3540": c3540_like,
    "c6288": c6288_like,
}

#: Loud-regression floor on the batch-vs-single speedup, per circuit.
MIN_SPEEDUP = 2.0


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_ppsfp(name, build, rng):
    circuit = build()
    patterns = (rng.random((N_PATTERNS, len(circuit.inputs))) < 0.5).astype(np.uint8)
    faults = full_fault_list(circuit)
    chosen = rng.choice(len(faults), N_FAULTS, replace=False)
    faults = [faults[i] for i in chosen]

    sim = FaultSimulator(circuit)
    # Warm both paths: cone schedules, batch plans, signature caches.
    single = sim.run(patterns, faults, drop_detected=False, mode="single")
    batched = sim.run(patterns, faults, drop_detected=False, mode="ppsfp")
    assert batched.detected == single.detected, (
        f"{name}: PPSFP diverged from the per-fault path"
    )

    t_single = _best_of(
        lambda: sim.run(patterns, faults, drop_detected=False, mode="single"), REPEATS
    )
    t_ppsfp = _best_of(
        lambda: sim.run(patterns, faults, drop_detected=False, mode="ppsfp"), REPEATS
    )

    work = len(faults) * N_PATTERNS
    return {
        "gates": circuit.num_logic_gates,
        "n_patterns": N_PATTERNS,
        "n_faults": len(faults),
        "detected": len(batched.detected),
        "single_s": t_single,
        "ppsfp_s": t_ppsfp,
        "single_fault_patterns_per_s": work / t_single,
        "ppsfp_fault_patterns_per_s": work / t_ppsfp,
        "speedup": t_single / t_ppsfp,
    }


def test_ppsfp_batch_throughput():
    rng = np.random.default_rng(2026)
    results = {
        name: _bench_ppsfp(name, build, rng) for name, build in CIRCUITS.items()
    }
    _update_report("ppsfp", {
        "workload": f"{N_FAULTS} faults x {N_PATTERNS} patterns, "
        "drop_detected=False (full sweep)",
        "units": "fault-patterns per second",
        "circuits": results,
    })
    slow = {
        n: round(r["speedup"], 2)
        for n, r in results.items()
        if r["speedup"] < MIN_SPEEDUP
    }
    assert not slow, (
        f"PPSFP batch speedup regressed below {MIN_SPEEDUP}x on {slow} "
        f"(see {_OUT_PATH})"
    )
