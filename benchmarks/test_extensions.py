"""Extension benches: the defenses the paper's conclusion calls for.

The paper closes by noting TrojanZero "instigates a need of exploring more
sophisticated and viable techniques for the post-silicon detection of HTs".
These benches quantify three such techniques against a TZ-infected circuit:

* **pre-silicon equivalence checking** (Fig. 1) — catches Algorithm 1's
  netlist edits outright; the structural reason the attack lives at the
  foundry;
* **MERO-style N-detect logic testing** [8] — pumps rare nodes and therefore
  the Trojan's counter clock; quantifies the counter-width safety margin;
* **delay side channel** — the payload MUX adds serial delay on the victim
  path that power/area matching cannot hide.
"""

import numpy as np
import pytest

from conftest import run_benchmark_cached
from repro.atpg import generate_mero_tests, mero_trigger_exposure
from repro.power import static_timing
from repro.power.timing import DelayDetector
from repro.verify import EquivalenceStatus
from repro.verify.sweep import sat_sweep_equivalence


@pytest.fixture(scope="module")
def c432_run(pipeline):
    return run_benchmark_cached(pipeline, "c432")


def test_presilicon_equivalence_defeats_salvage(benchmark, pipeline):
    """Netlist-level comparison (SAT sweeping) sees the modified circuit.

    On c880 the salvage includes rare-but-reachable behaviour changes, so
    the checker must return a concrete counterexample; on c432 the salvaged
    trace port happens to be provably redundant, so EQUIVALENT is the honest
    verdict there (see the countermeasures example).
    """
    c880_run = run_benchmark_cached(pipeline, "c880")
    golden = c880_run.thresholds.circuit
    modified = c880_run.salvage.modified

    result = benchmark.pedantic(
        sat_sweep_equivalence, args=(golden, modified), rounds=1, iterations=1
    )
    print(f"\npre-silicon check on c880 N': {result.status.value} "
          f"(differing output: {result.differing_output})")
    assert result.status is EquivalenceStatus.DIFFERENT
    assert result.counterexample is not None


def test_mero_exposure_vs_counter_width(benchmark, c432_run):
    """An N-detect defender pressures small counters; width restores stealth."""
    golden = c432_run.thresholds.circuit

    def run():
        from repro.trojan import insert_counter_trojan
        from repro.core.insertion import rank_trigger_sources, rank_victims

        mero = generate_mero_tests(golden, rare_threshold=0.95, n_target=4,
                                   pool_size=4096)
        victim = rank_victims(golden, 1)[0]
        # Pin the clock source across widths (most-exercisable rare node) so
        # the sweep isolates the counter-width lever.
        source = rank_trigger_sources(
            golden, 0.95, 1, edges_to_fire=1, session_vectors=1, pft_budget=1.0
        )[0]
        rows = []
        for bits in (1, 2, 4):
            infected = golden.copy(f"tz{bits}")
            inst = insert_counter_trojan(infected, victim, source, bits)
            exposure = mero_trigger_exposure(
                infected, inst.clock_source, inst.trigger_net, mero, shuffles=12
            )
            rows.append((bits, exposure))
        return mero.n_patterns, rows

    n_patterns, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nMERO set: {n_patterns} vectors")
    for bits, exposure in rows:
        print(f"  {bits}-bit counter: exposure {exposure:.2f}")
    exposures = [e for _, e in rows]
    assert exposures[0] >= exposures[-1]  # width buys stealth against MERO


def test_delay_side_channel_on_tz_circuit(benchmark, c432_run, library):
    """Delay testing of the actual TZ-infected circuit from the pipeline."""
    golden = c432_run.thresholds.circuit
    infected = c432_run.insertion.infected

    def run():
        golden_timing = static_timing(golden, library)
        # Compare only outputs present in both (the infected circuit keeps
        # the full interface, so this is all of them).
        infected_timing = static_timing(infected, library)
        detector = DelayDetector()
        detector.calibrate(golden_timing, n_chips=40)
        rate = detector.detection_rate(infected_timing, n_chips=40)
        victim_delay_before = golden_timing.output_arrival_ps
        return golden_timing.critical_delay_ps, infected_timing.critical_delay_ps, rate

    g_delay, i_delay, rate = benchmark.pedantic(run, rounds=1, iterations=1)
    shift_pct = 100.0 * (i_delay - g_delay) / g_delay
    print(
        f"\ncritical path: golden {g_delay:.0f} ps, infected {i_delay:.0f} ps "
        f"({shift_pct:+.1f}%); one-sided delay-detector rate: {rate:.2f}"
    )
    # TrojanZero matches power and area but NOT timing: the payload MUX adds
    # series delay while the salvaged gates shorten other paths, so the delay
    # signature shifts measurably in one direction or the other.  (A one-
    # sided slow-only detector misses a speed-up; a two-sided one would not.)
    assert abs(shift_pct) > 0.5
