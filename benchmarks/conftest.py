"""Shared fixtures for the benchmark harness.

The full Table-I pipeline is expensive (tens of seconds for the two large
benchmarks), so the five runs are computed once per session — through the
declarative :mod:`repro.api` front door — and shared by the table/figure
benches.  Each cached run is an :class:`repro.api.ExperimentOutcome`, so
benches can consume either the live :class:`TrojanZeroResult` (circuits,
detector post-mortems) or the serializable :class:`ExperimentRecord`
(Table-I reporting).
"""

from __future__ import annotations

import pytest

from repro.api import TABLE1_PARAMETERS, ExperimentSpec, execute_experiment
from repro.core import TrojanZeroPipeline
from repro.power import tech65_library

#: The paper's Table I parameters: benchmark -> (Pth, counter bits).
PAPER_PARAMETERS = TABLE1_PARAMETERS


@pytest.fixture(scope="session")
def library():
    return tech65_library()


@pytest.fixture(scope="session")
def pipeline():
    return TrojanZeroPipeline.default()


_OUTCOME_CACHE = {}


def run_outcome_cached(pipeline, name):
    """Run (or fetch) the full TrojanZero flow for one paper benchmark."""
    if name not in _OUTCOME_CACHE:
        pth, bits = PAPER_PARAMETERS[name]
        spec = ExperimentSpec(circuit=name, pth=pth, design=f"counter{bits}")
        _OUTCOME_CACHE[name] = execute_experiment(spec, pipeline=pipeline)
    return _OUTCOME_CACHE[name]


def run_benchmark_cached(pipeline, name):
    """The live pipeline result of one cached Table-I run."""
    return run_outcome_cached(pipeline, name).result


def run_record_cached(pipeline, name):
    """The serializable ExperimentRecord of one cached Table-I run."""
    return run_outcome_cached(pipeline, name).record


@pytest.fixture(scope="session")
def table1_results(pipeline):
    """All five Table-I pipeline results, keyed by benchmark name."""
    return {name: run_benchmark_cached(pipeline, name) for name in PAPER_PARAMETERS}


@pytest.fixture(scope="session")
def table1_records(pipeline):
    """All five Table-I ExperimentRecords, keyed by benchmark name."""
    return {name: run_record_cached(pipeline, name) for name in PAPER_PARAMETERS}
