"""Shared fixtures for the benchmark harness.

The full Table-I pipeline is expensive (tens of seconds for the two large
benchmarks), so the five runs are computed once per session and shared by the
table/figure benches.
"""

from __future__ import annotations

import pytest

from repro.bench import BENCHMARKS
from repro.core import TrojanZeroPipeline
from repro.power import tech65_library

#: The paper's Table I parameters: benchmark -> (Pth, counter bits).
PAPER_PARAMETERS = {
    "c432": (0.975, 2),
    "c499": (0.993, 3),
    "c880": (0.992, 3),
    "c1908": (0.9986, 5),
    "c3540": (0.992, 5),
}


@pytest.fixture(scope="session")
def library():
    return tech65_library()


@pytest.fixture(scope="session")
def pipeline():
    return TrojanZeroPipeline.default()


_RESULT_CACHE = {}


def run_benchmark_cached(pipeline, name):
    """Run (or fetch) the full TrojanZero flow for one paper benchmark."""
    if name not in _RESULT_CACHE:
        pth, bits = PAPER_PARAMETERS[name]
        _RESULT_CACHE[name] = pipeline.run(
            BENCHMARKS[name](), p_threshold=pth, counter_bits=bits
        )
    return _RESULT_CACHE[name]


@pytest.fixture(scope="session")
def table1_results(pipeline):
    """All five Table-I runs, keyed by benchmark name."""
    return {name: run_benchmark_cached(pipeline, name) for name in PAPER_PARAMETERS}
