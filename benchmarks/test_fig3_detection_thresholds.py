"""Fig. 3: minimum power/area overheads the baseline detectors need.

The paper motivates TrojanZero by showing the state-of-the-art power-based
methods only detect HTs whose footprint exceeds some minimum overhead
(observation points X, Y1/Y2, A1-A3 on the c499 benchmark).  This bench
sweeps additive-HT sizes on the c499-class circuit, fabricates 40-chip
populations under process variation, and reports the first sweep point each
detector flags reliably — together with that point's dynamic/leakage/area
overheads (the paper's paired bars).
"""

import pytest

from repro.bench import c499_like
from repro.detect import (
    calibrate_detectors,
    minimum_detectable_overhead,
    sweep_additive_overheads,
)
from repro.power import optimize_netlist

GATE_COUNTS = (1, 2, 4, 8, 16, 32)


@pytest.fixture(scope="module")
def sweep(library):
    golden = optimize_netlist(c499_like())
    bench = calibrate_detectors(golden, library, n_golden=40, seed=11)
    points = sweep_additive_overheads(
        golden, library, bench, gate_counts=GATE_COUNTS, n_chips=40, seed=29
    )
    return bench, points


def test_fig3_sweep(benchmark, sweep):
    bench_detectors, points = sweep
    points = benchmark.pedantic(lambda: points, rounds=1, iterations=1)
    print()
    print(f"{'gates':>5} {'dyn%':>7} {'leak%':>7} {'area%':>7}   rad   glc  chen")
    for p in points:
        r = p.detection_rates
        print(
            f"{p.n_extra_gates:>5} {p.dynamic_overhead_pct:>7.3f} "
            f"{p.leakage_overhead_pct:>7.3f} {p.area_overhead_pct:>7.3f}   "
            f"{r['rad']:.2f}  {r['glc']:.2f}  {r['chen']:.2f}"
        )
    # Detection rate must grow with overhead for every detector.
    for det in ("rad", "glc", "chen"):
        rates = [p.detection_rates[det] for p in points]
        assert rates[-1] >= rates[0]
        assert rates[-1] >= 0.9  # a 32-gate additive HT is unmistakable


@pytest.mark.parametrize(
    "detector,max_dynamic_pct",
    [
        ("rad", 2.5),   # paper point X: ~0.27% dynamic; our model: ~1-2%
        ("chen", 6.0),  # paper point Y1 leakage band
        ("glc", 10.0),  # paper point Y2: least sensitive
    ],
)
def test_fig3_minimum_overheads(benchmark, sweep, detector, max_dynamic_pct):
    _, points = sweep
    hit = benchmark.pedantic(
        minimum_detectable_overhead, args=(points, detector), rounds=1, iterations=1
    )
    assert hit is not None, f"{detector} never reached 50% detection"
    print(
        f"\n{detector}: min detectable overhead = +{hit.dynamic_overhead_pct:.2f}% dyn, "
        f"+{hit.leakage_overhead_pct:.2f}% leak, +{hit.area_overhead_pct:.2f}% area "
        f"({hit.n_extra_gates} gates)"
    )
    assert hit.dynamic_overhead_pct <= max_dynamic_pct


def test_fig3_sensitivity_ordering(benchmark, sweep):
    """Paper Fig. 3 ordering: the transient-power method [10] needs the least
    overhead; GLC [11] the most."""
    _, points = sweep
    mins = benchmark.pedantic(
        lambda: {
            d: minimum_detectable_overhead(points, d) for d in ("rad", "glc", "chen")
        },
        rounds=1,
        iterations=1,
    )
    assert mins["rad"].n_extra_gates <= mins["chen"].n_extra_gates
    assert mins["chen"].n_extra_gates <= mins["glc"].n_extra_gates
