#!/usr/bin/env python3
"""What *does* defeat TrojanZero?  The defenses the paper's conclusion asks for.

The paper shows TrojanZero evades power/area side-channel detection, and
closes by calling for "more sophisticated and viable techniques".  This
example runs three such techniques from this library against a real
TZ-infected circuit:

1. **Pre-silicon equivalence checking** (SAT sweeping) — compares the
   modified netlist against the golden one and finds the functional edit
   (or proves the removals were genuinely redundant logic).
2. **MERO N-detect logic testing** — excites rare nodes repeatedly, pumping
   the Trojan's counter clock; shows how counter width trades against it.
3. **Delay side channel** — static timing analysis shows the TZ edit shifts
   path delays even though power and area match.

Run:  python examples/defender_countermeasures.py
"""

from repro.atpg import generate_mero_tests, mero_trigger_exposure
from repro.bench import c432_like
from repro.core import TrojanZeroPipeline
from repro.core.insertion import rank_trigger_sources, rank_victims
from repro.power import DelayDetector, static_timing, tech65_library
from repro.trojan import insert_counter_trojan
from repro.verify.sweep import sat_sweep_equivalence


def main() -> None:
    library = tech65_library()
    pipeline = TrojanZeroPipeline.default()
    result = pipeline.run(c432_like(), p_threshold=0.975, counter_bits=2)
    assert result.success
    golden = result.thresholds.circuit
    print(result.summary())

    # ------------------------------------------------------------------
    print("\n1. Pre-silicon equivalence checking (SAT sweeping)")
    check = sat_sweep_equivalence(golden, result.salvage.modified)
    print(f"   golden vs modified N': {check.status.value}")
    if check.counterexample:
        print(f"   differing output {check.differing_output}; the defender has a")
        print("   concrete vector proving the netlist was tampered with.")
    else:
        print("   (every salvaged gate was provably redundant logic — removal")
        print("   is functionally invisible even to formal comparison)")

    # ------------------------------------------------------------------
    print("\n2. MERO-style N-detect logic testing")
    mero = generate_mero_tests(golden, rare_threshold=0.95, n_target=4)
    print(f"   {mero.n_patterns} vectors exciting "
          f"{len(mero.rare_node_list)} rare nodes >= 4x each")
    victim = rank_victims(golden, 1)[0]
    # Fix the clock source across widths: the most-exercisable rare node (the
    # attacker's best trigger if they did NOT anticipate an N-detect defender).
    source = rank_trigger_sources(
        golden, 0.95, 1, edges_to_fire=1, session_vectors=1, pft_budget=1.0
    )[0]
    for bits in (1, 2, 4):
        infected = golden.copy(f"tz{bits}")
        inst = insert_counter_trojan(infected, victim, source, bits)
        exposure = mero_trigger_exposure(
            infected, inst.clock_source, inst.trigger_net, mero, shuffles=12
        )
        print(f"   {bits}-bit counter: triggered in {100 * exposure:.0f}% of "
              "shuffled MERO sessions")

    # ------------------------------------------------------------------
    print("\n3. Delay side channel (static timing analysis)")
    golden_timing = static_timing(golden, library)
    infected_timing = static_timing(result.insertion.infected, library)
    shift = (
        100.0
        * (infected_timing.critical_delay_ps - golden_timing.critical_delay_ps)
        / golden_timing.critical_delay_ps
    )
    print(f"   critical path: {golden_timing.critical_delay_ps:.0f} ps -> "
          f"{infected_timing.critical_delay_ps:.0f} ps ({shift:+.1f}%)")
    detector = DelayDetector()
    detector.calibrate(golden_timing, n_chips=40)
    rate = detector.detection_rate(infected_timing, n_chips=40)
    print(f"   one-sided (slow-only) delay detector flags {100 * rate:.0f}% "
          "of TZ chips;")
    print("   the full delay signature shift shows power/area matching does "
          "not extend to timing.")


if __name__ == "__main__":
    main()
