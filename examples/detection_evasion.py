#!/usr/bin/env python3
"""Detection experiments: Fig. 3 thresholds and the TrojanZero evasion claim.

Part 1 regenerates Fig. 3's message: sweep *additive* HT sizes on the
c499-class circuit, fabricate chip populations under process variation, and
find the minimum power/area overhead each baseline detector [10][11][12]
needs before it reliably flags the HT.

Part 2 runs the paper's headline experiment (Sec. IV): the same detectors are
shown a conventional additive HT (caught) and a TrojanZero-infected circuit
(not caught).  The ``structural`` ablation then shows that
redistribution-aware detectors *do* catch TrojanZero — supporting the paper's
closing call for new detection methodologies.

Part 3 escalates the defender to the side-channel trace lab of
``repro.traces`` (see the architecture map in README.md): per-cycle power
traces, TVLA-style t-tests, and distinguishers keyed on predicted trigger
activity — at several sensor-noise levels, showing where the zero-footprint
property stops protecting the Trojan.

Run:  python examples/detection_evasion.py
"""

from repro.bench import c499_like
from repro.core import TrojanZeroPipeline
from repro.detect import (
    calibrate_detectors,
    evasion_experiment,
    minimum_detectable_overhead,
    sweep_additive_overheads,
)
from repro.power import tech65_library
from repro.traces import TraceLabConfig, trace_evasion_experiment


def main() -> None:
    library = tech65_library()
    pipeline = TrojanZeroPipeline.default()
    result = pipeline.run(c499_like(), p_threshold=0.993, counter_bits=3)
    golden = result.thresholds.circuit
    infected = result.insertion.infected
    assert infected is not None, "TrojanZero insertion failed"

    # ------------------------------------------------------------------
    print("Part 1 — minimum detectable additive overhead (Fig. 3 analogue)")
    bench = calibrate_detectors(golden, library, n_golden=40)
    points = sweep_additive_overheads(
        golden, library, bench, gate_counts=(1, 2, 4, 8, 16, 32), n_chips=40
    )
    print(f"{'gates':>5} {'dyn%':>7} {'leak%':>7} {'area%':>7}   rad   glc  chen")
    for p in points:
        r = p.detection_rates
        print(
            f"{p.n_extra_gates:>5} {p.dynamic_overhead_pct:>7.3f} "
            f"{p.leakage_overhead_pct:>7.3f} {p.area_overhead_pct:>7.3f}   "
            f"{r['rad']:.2f}  {r['glc']:.2f}  {r['chen']:.2f}"
        )
    for name in ("rad", "glc", "chen"):
        hit = minimum_detectable_overhead(points, name)
        if hit:
            print(
                f"  {name}: first reliable detection at +{hit.dynamic_overhead_pct:.2f}% "
                f"dynamic / +{hit.leakage_overhead_pct:.2f}% leakage / "
                f"+{hit.area_overhead_pct:.2f}% area"
            )

    # ------------------------------------------------------------------
    print("\nPart 2 — evasion experiment (Sec. IV)")
    for mode in ("paper", "structural"):
        report = evasion_experiment(
            golden, infected, library, additive_gates=16, n_chips=40, mode=mode
        )
        print(f"\n  detector mode: {mode}")
        print(f"    golden chips flagged:     {report.golden_rates}")
        print(
            f"    additive HT (+{report.additive_overhead_pct:.2f}% power): "
            f"{report.additive_rates}"
        )
        print(
            f"    TrojanZero ({report.trojanzero_overhead_pct:+.2f}% power): "
            f"{report.trojanzero_rates}"
        )
        verdict = "EVADES" if report.trojanzero_evades() else "is CAUGHT by"
        print(f"    => TrojanZero {verdict} the {mode}-mode detectors")

    # ------------------------------------------------------------------
    print("\nPart 3 — side-channel trace lab (per-cycle power traces)")
    print("  aggregate invisibility vs. temporal structure, by sensor noise:")
    for noise_rel, jitter in ((0.01, 0), (0.05, 0), (0.10, 1)):
        config = TraceLabConfig(noise_rel=noise_rel, jitter_cycles=jitter)
        trace_report = trace_evasion_experiment(
            golden, infected, library, additive_gates=16, n_chips=16,
            seed=37, config=config,
        )
        verdict = "EVADES" if trace_report.trojanzero_evades() else "CAUGHT"
        print(
            f"    noise {noise_rel:.2f} rel, jitter {jitter}: "
            f"TZ {verdict:<6} "
            f"(tvla {trace_report.trojanzero_rates['tvla']:.2f}, "
            f"dom {trace_report.trojanzero_rates.get('dom', 0.0):.2f}) "
            f"additive tvla {trace_report.additive_rates['tvla']:.2f}, "
            f"golden tvla {trace_report.golden_rates['tvla']:.2f}"
        )
    print(
        "    => per-cycle traces break the zero-footprint evasion long before"
        "\n       aggregate detectors do — the trigger's switching is small"
        "\n       but temporally localized exactly where the defender's"
        "\n       netlist model predicts it."
    )


if __name__ == "__main__":
    main()
