#!/usr/bin/env python3
"""Programmatic campaign sweep with JSONL post-processing.

Builds a benchmark x Pth grid with :meth:`repro.api.CampaignSpec.sweep`,
shards it across two worker processes with :class:`repro.api.CampaignRunner`
(records stream to ``sweep_results.jsonl`` as cells finish; re-running this
script resumes, skipping completed cells), then post-processes the JSONL to
answer a question the one-cell CLI commands cannot: *how does the salvaged
budget and trigger stealth move as the attacker relaxes Pth?*

Run:  python examples/campaign_sweep.py          (~1 minute, 2 workers)
"""

from collections import defaultdict
from pathlib import Path

from repro.api import CampaignRunner, CampaignSpec, load_records

OUT = Path("sweep_results.jsonl")


def main() -> None:
    campaign = CampaignSpec.sweep(
        circuits=["c432", "c880"],
        pths=[0.95, 0.975, 0.992],
        seeds=[2019],
        mc_sessions=0,
        name="pth_sweep",
    )
    runner = CampaignRunner(campaign, jobs=2, out=OUT, resume=OUT.exists())
    result = runner.run(
        progress=lambda r: print(
            f"  {r.spec.circuit} pth={r.spec.pth:g}: "
            f"{'ok' if r.success else 'no insertion'}"
        )
    )
    print(f"campaign: {result.summary()}\n")

    # Post-processing works off the JSONL alone — a later session (or another
    # machine) can aggregate the same file without re-running anything.
    by_circuit = defaultdict(list)
    for record in load_records(OUT, strict=False):
        by_circuit[record.spec.circuit].append(record)

    print(f"{'circuit':<8} {'Pth':>7} {'C':>4} {'Eg':>4} {'salvaged uW':>12} "
          f"{'HT':>9} {'Pft':>10}")
    for circuit, records in sorted(by_circuit.items()):
        for r in sorted(records, key=lambda r: r.spec.pth):
            salvaged = r.delta_salvage["total_uw"] if r.delta_salvage else 0.0
            pft = f"{r.pft:.1e}" if r.pft is not None else "-"
            print(
                f"{circuit:<8} {r.spec.pth:>7.4f} {r.candidates:>4} "
                f"{r.expendable:>4} {salvaged:>12.3f} "
                f"{r.design or '-':>9} {pft:>10}"
            )
    print(
        "\nLower Pth admits more candidates (bigger C) for Algorithm 1 to "
        "try; the accepted edits — and hence the salvaged budget and the HT "
        "that fits — depend on which candidates survive the defender's "
        "tests."
    )


if __name__ == "__main__":
    main()
