#!/usr/bin/env python3
"""Quickstart: run the full TrojanZero flow on one benchmark circuit.

Reproduces the paper's Fig. 2 pipeline end to end:

1. Phase A  — verify the HT-free circuit, generate the defender's stuck-at
   ATPG test patterns, and freeze the power/area thresholds.
2. Algorithm 1 — find rarely-activated candidate gates and salvage the ones
   the defender's tests cannot see.
3. Algorithm 2 — insert a counter-based hardware Trojan (Fig. 4) and pad so
   the infected circuit matches the HT-free thresholds.

Run:  python examples/quickstart.py
"""

from repro.bench import c432_like, save_bench
from repro.core import TableRow, TrojanZeroPipeline, format_table


def main() -> None:
    circuit = c432_like()
    print(f"Target circuit: {circuit}")

    pipeline = TrojanZeroPipeline.default()
    result = pipeline.run(circuit, p_threshold=0.975, counter_bits=2)

    print()
    print(result.summary())
    print()

    ts = result.thresholds.test_set
    print(
        f"Defender ATPG: {ts.n_patterns} patterns, "
        f"{100 * ts.coverage:.1f}% stuck-at coverage "
        f"({len(ts.aborted)} aborted, {len(ts.not_attempted)} beyond budget)"
    )

    accepted = result.salvage.accepted_removals()
    print(f"\nAlgorithm 1 accepted {len(accepted)} candidate removals:")
    for record in accepted[:8]:
        stripped = f" (+{len(record.stripped_gates)} stripped)" if record.stripped_gates else ""
        print(f"  tie {record.net} -> {record.tied_value}{stripped}")

    if result.success:
        print(f"\nAlgorithm 2 placed {result.insertion.design.name} "
              f"on victim net {result.insertion.victim!r}, "
              f"clocked by rare node {result.insertion.instance.clock_source!r}")
        print(f"Dummy padding: {len(result.insertion.dummy_gates)} cells")
        print()
        print(format_table([TableRow.from_result(result)]))

        out_path = "/tmp/c432_tz_infected.bench"
        save_bench(result.insertion.infected, out_path)
        print(f"\nTZ-infected netlist written to {out_path}")


if __name__ == "__main__":
    main()
