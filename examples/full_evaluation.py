#!/usr/bin/env python3
"""Regenerate the paper's Table I across all five ISCAS85-class benchmarks.

For each benchmark this runs the complete TrojanZero flow with the paper's
per-circuit parameters (Pth and counter width from Table I) and prints the
same columns the paper reports: candidates C, expendable gates Eg, HT size,
total power and area of the HT-free (N), modified (N') and TZ-infected (N'')
circuits, and the functional-test trigger probability Pft.

Run:  python examples/full_evaluation.py          (~1 minute)
"""

import time

from repro.bench import BENCHMARKS
from repro.core import TableRow, TrojanZeroPipeline, format_table

#: The paper's Table I parameters: benchmark -> (Pth, counter bits).
PAPER_PARAMETERS = {
    "c432": (0.975, 2),
    "c499": (0.993, 3),
    "c880": (0.992, 3),
    "c1908": (0.9986, 5),
    "c3540": (0.992, 5),
}

#: Paper's reported values for side-by-side comparison.
PAPER_TABLE1 = {
    "c432": dict(C=8, Eg=5, PN=35.6, PNp=20.83, PNpp=27.7, AN=186.8, ANpp=163, Pft=0.9e-4),
    "c499": dict(C=12, Eg=7, PN=181.9, PNp=173.4, PNpp=177.4, AN=463.4, ANpp=451.5, Pft=6.1e-6),
    "c880": dict(C=27, Eg=11, PN=77.2, PNp=70.2, PNpp=76.4, AN=365.4, ANpp=362.8, Pft=8.0e-6),
    "c1908": dict(C=43, Eg=45, PN=160.9, PNp=151.6, PNpp=157.4, AN=454.7, ANpp=453.6, Pft=6.1e-8),
    "c3540": dict(C=41, Eg=57, PN=248.5, PNp=187.2, PNpp=241.7, AN=986.8, ANpp=980, Pft=2.0e-6),
}


def main() -> None:
    pipeline = TrojanZeroPipeline.default()
    rows = []
    for name, (pth, bits) in PAPER_PARAMETERS.items():
        start = time.time()
        result = pipeline.run(BENCHMARKS[name](), p_threshold=pth, counter_bits=bits)
        rows.append((name, result, time.time() - start))
        status = "ok" if result.success else "FAILED"
        print(f"  {name}: {status} [{rows[-1][2]:.1f}s]")

    print()
    print(format_table([TableRow.from_result(r) for _, r, _ in rows]))

    print("\nShape checks against the paper's Table I:")
    for name, result, _ in rows:
        paper = PAPER_TABLE1[name]
        ok_order = (
            result.power_modified.total_uw
            < result.power_infected.total_uw
            <= result.power_free.total_uw * 1.01
            if result.success
            else False
        )
        ok_pft = result.pft is not None and result.pft < 1e-3
        ratio_here = result.power_infected.total_uw / result.power_free.total_uw
        ratio_paper = paper["PNpp"] / paper["PN"]
        print(
            f"  {name}: N'<N''<=N {'yes' if ok_order else 'NO'} | "
            f"P(N'')/P(N) = {ratio_here:.3f} (paper {ratio_paper:.3f}) | "
            f"Pft {result.pft:.1e} (paper {paper['Pft']:.1e}) "
            f"{'< 1e-3 ok' if ok_pft else 'VIOLATION'}"
        )


if __name__ == "__main__":
    main()
