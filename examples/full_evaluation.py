#!/usr/bin/env python3
"""Regenerate the paper's Table I across all five ISCAS85-class benchmarks.

The declarative way: :meth:`repro.api.CampaignSpec.table1` expands the
paper's per-circuit parameters (Pth and counter width from Table I) into
five :class:`repro.api.ExperimentSpec` cells, and each cell evaluates to a
serializable :class:`repro.api.ExperimentRecord` carrying the same columns
the paper reports: candidates C, expendable gates Eg, HT size, total power
and area of the HT-free (N), modified (N') and TZ-infected (N'') circuits,
and the functional-test trigger probability Pft.

Run:  python examples/full_evaluation.py          (~1 minute)
"""

from repro.api import CampaignSpec, run_experiment
from repro.core import TableRow, format_table

#: Paper's reported values for side-by-side comparison.
PAPER_TABLE1 = {
    "c432": dict(C=8, Eg=5, PN=35.6, PNp=20.83, PNpp=27.7, AN=186.8, ANpp=163, Pft=0.9e-4),
    "c499": dict(C=12, Eg=7, PN=181.9, PNp=173.4, PNpp=177.4, AN=463.4, ANpp=451.5, Pft=6.1e-6),
    "c880": dict(C=27, Eg=11, PN=77.2, PNp=70.2, PNpp=76.4, AN=365.4, ANpp=362.8, Pft=8.0e-6),
    "c1908": dict(C=43, Eg=45, PN=160.9, PNp=151.6, PNpp=157.4, AN=454.7, ANpp=453.6, Pft=6.1e-8),
    "c3540": dict(C=41, Eg=57, PN=248.5, PNp=187.2, PNpp=241.7, AN=986.8, ANpp=980, Pft=2.0e-6),
}


def main() -> None:
    records = []
    for spec in CampaignSpec.table1():
        record = run_experiment(spec)
        records.append(record)
        status = "ok" if record.success else "FAILED"
        took = record.runtime["timings_s"]["total"]
        print(f"  {spec.circuit}: {status} [{took:.1f}s]")

    print()
    print(format_table([TableRow.from_record(r) for r in records]))

    print("\nShape checks against the paper's Table I:")
    for record in records:
        paper = PAPER_TABLE1[record.spec.circuit]
        n = record.power["free"]
        n_prime = record.power["modified"]
        n_inf = record.power["infected"]
        ok_order = (
            n_prime["total_uw"] < n_inf["total_uw"] <= n["total_uw"] * 1.01
            if record.success
            else False
        )
        ok_pft = record.pft is not None and record.pft < 1e-3
        ratio_here = n_inf["total_uw"] / n["total_uw"]
        ratio_paper = paper["PNpp"] / paper["PN"]
        print(
            f"  {record.spec.circuit}: N'<N''<=N {'yes' if ok_order else 'NO'} | "
            f"P(N'')/P(N) = {ratio_here:.3f} (paper {ratio_paper:.3f}) | "
            f"Pft {record.pft:.1e} (paper {paper['Pft']:.1e}) "
            f"{'< 1e-3 ok' if ok_pft else 'VIOLATION'}"
        )


if __name__ == "__main__":
    main()
