#!/usr/bin/env python3
"""Campaign through the fleet service: submit, stream, cache, query.

Starts an in-process :class:`repro.service.FleetServer` (in production you
would run ``python -m repro serve`` and point clients at it), drives a small
benchmark x Pth grid through the typed :class:`repro.service.FleetClient`,
then demonstrates the two properties the service adds over a bare
:class:`repro.api.CampaignRunner`:

1. **Fleet-wide dedup** — resubmitting the same campaign computes nothing:
   every record is served from the spec-hash result cache, bit-identical to
   the first run (the record payload is a pure function of the spec).
2. **Columnar queries** — every record also lands in the result store, so
   aggregates like per-circuit detection rates come from numpy column
   scans, not re-parsing JSONL.

Run:  python examples/service_campaign.py          (~1 minute)
"""

import tempfile
import time

from repro.api import CampaignSpec
from repro.service import FleetClient, FleetServer


def run_job(client: FleetClient, campaign: CampaignSpec) -> str:
    job_id = client.submit(campaign, jobs=2)
    start = time.perf_counter()
    for record in client.stream(job_id):  # live, in emit order
        source = record.runtime.get("cache", "computed")
        print(
            f"  {record.spec.circuit:<6} pth={record.spec.pth:<6g} "
            f"[{source}] {'ok' if record.success else 'no insertion'}"
        )
    status = client.wait(job_id)
    print(
        f"job {job_id}: {status.state}, {status.n_records} records, "
        f"{status.n_cached} from cache, {time.perf_counter() - start:.2f}s\n"
    )
    return job_id


def main() -> None:
    campaign = CampaignSpec.sweep(
        circuits=["c17", "c432"],
        pths=[0.9, 0.975],
        seeds=[2019],
        mc_sessions=0,
        name="service_demo",
    )

    with tempfile.TemporaryDirectory(prefix="fleet_demo_") as data_dir:
        server = FleetServer(port=0, data_dir=data_dir, jobs=2).start()
        try:
            client = FleetClient(server.url)
            client.wait_ready()

            print(f"server at {server.url}\n\nfirst submission (cold):")
            run_job(client, campaign)

            print("second submission (same specs, nothing recomputed):")
            run_job(client, campaign)

            # The store answers aggregate questions from column scans.
            store = server.store
            print("result store:", store.summary())
            view = store.query(
                columns=["circuit", "pth", "delta_tz_total_uw"],
                success=True,
            )
            for circuit, pth, delta in zip(
                view["circuit"], view["pth"], view["delta_tz_total_uw"]
            ):
                print(
                    f"  {circuit} pth={pth:g}: inserted HT at "
                    f"{delta:+.3f} uW power delta"
                )
        finally:
            server.close()


if __name__ == "__main__":
    main()
