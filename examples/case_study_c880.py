#!/usr/bin/env python3
"""Section III case study: intruding the 8-bit ALU (c880-class) with TrojanZero.

Walks the paper's case study step by step:

* II-A: compute power/area thresholds of the HT-free ALU (paper: 77.2 uW,
  365.4 GE with TSMC 65nm — our 65nm-class model lands in the same range);
* Fig. 5: list the candidate gate segments at Pth = 0.992;
* Algorithm 1: salvage the expendable gates (paper: 11 gates, 7 uW, 35.7 GE);
* Algorithm 2: insert the 3-bit asynchronous counter HT (Fig. 4) and show the
  near-zero differentials (paper: dPT = 0.8 uW, dA = 2.6 GE);
* validate the trigger probability Pft analytically and by Monte-Carlo
  sequential simulation of full defender test sessions.

Run:  python examples/case_study_c880.py
"""

import numpy as np

from repro.bench import c880_like
from repro.core import TrojanZeroPipeline
from repro.prob import rare_nodes
from repro.trojan import trigger_report


def main() -> None:
    circuit = c880_like()
    print(f"Case study target: {circuit}\n")

    # ------------------------------------------------------------------
    # Fig. 5: candidate segments at Pth = 0.992.
    print("Candidate gates (Fig. 5 analogue) at Pth = 0.992:")
    for net, p_one in rare_nodes(circuit, 0.992)[:12]:
        gate = circuit.gate(net)
        polarity = f"P1={p_one:.4f}" if p_one > 0.5 else f"P0={1 - p_one:.4f}"
        print(f"  {gate.gate_type.value:<5} {net:<16} {polarity}")
    print()

    # ------------------------------------------------------------------
    # Full pipeline with the paper's parameters.
    pipeline = TrojanZeroPipeline.default()
    result = pipeline.run(circuit, p_threshold=0.992, counter_bits=3)

    n, npr = result.power_free, result.power_modified
    print("Power and area (paper Sec. III values in parentheses):")
    print(f"  N   : {n.total_uw:7.2f} uW  (77.2)   {n.area_ge:7.1f} GE  (365.4)")
    print(f"        dynamic {n.dynamic_uw:7.2f} uW (70.35)  leakage {n.leakage_uw:5.2f} uW (6.87)")
    print(f"  N'  : {npr.total_uw:7.2f} uW  (70.2)   {npr.area_ge:7.1f} GE  (329.7)")
    delta = result.salvage.delta
    print(
        f"  salvaged: {delta.total_uw:5.2f} uW (7.0), {delta.area_ge:5.1f} GE (35.7), "
        f"{result.salvage.expendable_gates} gates (11)"
    )

    if not result.success:
        print("insertion failed!")
        return

    nn = result.power_infected
    d = result.delta_tz
    print(f"  N'' : {nn.total_uw:7.2f} uW  (76.4)   {nn.area_ge:7.1f} GE  (362.8)")
    print(
        f"  dTZ : total {d.total_uw:+.2f} uW (0.8)  dynamic {d.dynamic_uw:+.2f} uW (1.03)  "
        f"leakage {d.leakage_uw:+.3f} uW (0.02)  area {d.area_ge:+.1f} GE (2.6)"
    )

    # ------------------------------------------------------------------
    # Trigger analysis: analytic + Monte-Carlo over full test sessions.
    instance = result.insertion.instance
    print(
        f"\nInserted {result.insertion.design.name} on victim "
        f"{result.insertion.victim!r}, clocked by {instance.clock_source!r}"
    )
    report = trigger_report(
        result.insertion.infected,
        instance,
        n_test_vectors=result.thresholds.n_test_vectors,
        monte_carlo_sessions=128,
        rng=np.random.default_rng(7),
    )
    print(
        f"Trigger: p_edge = {report.p_edge:.5f}, needs {report.edges_to_fire} edges "
        f"in {report.test_vectors} test vectors"
    )
    print(f"Pft analytic    = {report.pft_analytic:.3e}  (paper: 8.0e-6)")
    print(f"Pft Monte-Carlo = {report.pft_monte_carlo:.3e}  (128 sessions)")


if __name__ == "__main__":
    main()
